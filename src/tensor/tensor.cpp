#include "tensor/tensor.hpp"

#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace fedhisyn {

namespace {
std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    FEDHISYN_CHECK_MSG(d >= 0, "negative dimension " << d);
    n *= d;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  FEDHISYN_CHECK(shape_.size() <= 4);
  numel_ = shape_numel(shape_);
  data_.assign(static_cast<std::size_t>(numel_), 0.0f);
}

Tensor::Tensor(std::initializer_list<std::int64_t> shape)
    : Tensor(std::vector<std::int64_t>(shape)) {}

std::int64_t Tensor::dim(std::size_t axis) const {
  FEDHISYN_CHECK(axis < shape_.size());
  return shape_[axis];
}

std::span<float> Tensor::row(std::int64_t r) {
  FEDHISYN_CHECK(rank() >= 2);
  const std::int64_t stride = numel_ / shape_[0];
  FEDHISYN_CHECK(r >= 0 && r < shape_[0]);
  return {data_.data() + r * stride, static_cast<std::size_t>(stride)};
}

std::span<const float> Tensor::row(std::int64_t r) const {
  FEDHISYN_CHECK(rank() >= 2);
  const std::int64_t stride = numel_ / shape_[0];
  FEDHISYN_CHECK(r >= 0 && r < shape_[0]);
  return {data_.data() + r * stride, static_cast<std::size_t>(stride)};
}

void Tensor::reshape(std::vector<std::int64_t> shape) {
  FEDHISYN_CHECK_MSG(shape_numel(shape) == numel_,
                     "reshape from " << shape_str() << " changes element count");
  shape_ = std::move(shape);
}

void Tensor::fill(float value) {
  for (auto& x : data_) x = value;
}

void Tensor::resize(std::vector<std::int64_t> shape) {
  shape_ = std::move(shape);
  FEDHISYN_CHECK(shape_.size() <= 4);
  numel_ = shape_numel(shape_);
  data_.assign(static_cast<std::size_t>(numel_), 0.0f);
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ',';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace fedhisyn
