// Runtime kernel selection, the tuning-cache codec and the one-shot
// autotuner for the blocked GEMM family (see gemm_tune.hpp for the layering
// and gemm_kernel.hpp for why none of this can change result bytes).
#include "tensor/gemm_tune.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace fedhisyn {

namespace {

using gemmk::GemmKernel;
using gemmk::GemmOp;
using gemmk::GemmVariant;
using gemmk::detail::ResolvedGemm;

constexpr const char* kTuneSchema = "fedhisyn-gemm-tune/1";

// The autotuner reads wall clock to *time* candidates; the timings pick a
// schedule, never feed result bytes (every candidate is bit-identical).  All
// clock access in this TU funnels through this one alias.
using tune_clock = std::chrono::steady_clock;  // determinism: gemm-autotune-timer

/// The four variants in auto-dispatch preference order: widest vectors first,
/// generic as the unconditional fallback.
std::array<const GemmVariant*, 4> all_variants() {
  return {&gemmk::gemm_variant_avx512(), &gemmk::gemm_variant_avx2(),
          &gemmk::gemm_variant_neon(), &gemmk::gemm_variant_generic()};
}

bool variant_usable(const GemmVariant& variant) {
  return variant.supported() && !variant.kernels.empty();
}

const GemmVariant* find_variant(const std::string& name) {
  for (const GemmVariant* variant : all_variants()) {
    if (name == variant->name) return variant;
  }
  return nullptr;
}

const GemmKernel* find_kernel(const GemmVariant& variant,
                              const std::string& label) {
  for (const GemmKernel& kernel : variant.kernels) {
    if (label == kernel.label) return &kernel;
  }
  return nullptr;
}

constexpr const char* kOpNames[3] = {"nn", "nt", "tn"};

int op_index(GemmOp op) { return static_cast<int>(op); }
int width_index(std::int64_t n) { return n > kGemmWideN ? 1 : 0; }
const char* width_name(int wi) { return wi == 0 ? "narrow" : "wide"; }

std::string class_name(int oi, int wi) {
  return std::string(kOpNames[oi]) + "/" + width_name(wi);
}

/// "nn/wide" -> (0, 1); false when the key names no known class.
bool parse_class(const std::string& key, int& oi, int& wi) {
  for (oi = 0; oi < 3; ++oi) {
    for (wi = 0; wi < 2; ++wi) {
      if (key == class_name(oi, wi)) return true;
    }
  }
  return false;
}

std::int64_t round_up(std::int64_t value, std::int64_t multiple) {
  return ((value + multiple - 1) / multiple) * multiple;
}

/// The process-wide resolved selection: info for diagnostics plus one
/// executable configuration per (op, output-width) class.
struct Runtime {
  GemmRuntimeInfo info;
  ResolvedGemm cfg[3][2];
};

void log_selection_once(const GemmRuntimeInfo& info) {
  static bool logged = false;  // once per process, not per reinit
  if (logged) return;
  logged = true;
  if (quiet_from_env()) return;
  std::string line = "fedhisyn: gemm variant=" + info.variant;
  if (!info.forced_kernel.empty()) line += " kernel=" + info.forced_kernel;
  line += " tune-cache=";
  if (info.cache_path.empty()) {
    line += "none";
  } else {
    line += info.cache_path;
    if (!info.cache_loaded) line += " (ignored: variant mismatch)";
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

/// Resolve the environment into a Runtime.  Throws CheckError on a forced
/// but unsupported variant, an unknown kernel label, or an unreadable or
/// malformed tuning cache; callers leave the previous selection in place.
Runtime build_runtime() {
  Runtime rt;

  // 1. Variant: forced by FEDHISYN_GEMM_KERNEL, else best supported ISA.
  const std::string spec = gemm_kernel_from_env();
  const GemmVariant* variant = nullptr;
  const GemmKernel* forced = nullptr;
  if (spec.empty() || spec == "auto") {
    for (const GemmVariant* candidate : all_variants()) {
      if (variant_usable(*candidate)) {
        variant = candidate;
        break;
      }
    }
    FEDHISYN_CHECK(variant != nullptr);  // generic is always usable
  } else {
    const auto colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    variant = find_variant(name);
    FEDHISYN_CHECK_MSG(variant != nullptr,
                       "FEDHISYN_GEMM_KERNEL names unknown variant '"
                           << name << "' (generic|avx2|avx512|neon|auto)");
    FEDHISYN_CHECK_MSG(variant_usable(*variant),
                       "FEDHISYN_GEMM_KERNEL forces variant '"
                           << name << "' but this CPU does not support it");
    if (colon != std::string::npos) {
      const std::string label = spec.substr(colon + 1);
      forced = find_kernel(*variant, label);
      FEDHISYN_CHECK_MSG(forced != nullptr,
                         "FEDHISYN_GEMM_KERNEL forces unknown kernel '"
                             << label << "' of variant '" << name << "'");
      rt.info.forced_kernel = label;
    }
  }
  rt.info.variant = variant->name;

  // 2. Per-class defaults: the variant's preferred shape (or the forced
  // label), panel width 512, two register tiles of rows per task.
  const GemmKernel* chosen[3][2];
  std::int64_t nc[3][2];
  std::int64_t rows[3][2];
  const GemmKernel* base = forced != nullptr ? forced : &variant->kernels[0];
  for (int oi = 0; oi < 3; ++oi) {
    for (int wi = 0; wi < 2; ++wi) {
      chosen[oi][wi] = base;
      nc[oi][wi] = 512;
      rows[oi][wi] = 2 * base->mr;
    }
  }

  // 3. Tuning cache: per-class winners recorded by the autotuner.  A cache
  // for a different variant is ignored with a warning — the documented
  // graceful path for a cache copied across hosts — while a malformed one
  // stops the run (gemm_tuning_from_json throws).
  const std::string cache_path = gemm_tune_cache_from_env();
  if (!cache_path.empty()) {
    rt.info.cache_path = cache_path;
    std::ifstream in(cache_path);
    FEDHISYN_CHECK_MSG(in.good(), "cannot read FEDHISYN_GEMM_TUNE_CACHE file '"
                                      << cache_path << "'");
    std::ostringstream text;
    text << in.rdbuf();
    const GemmTuning tuning = gemm_tuning_from_json(text.str());
    if (tuning.variant != rt.info.variant) {
      if (!quiet_from_env()) {
        std::fprintf(stderr,
                     "fedhisyn: gemm tune cache %s was recorded for variant %s "
                     "but %s is selected — ignoring it\n",
                     cache_path.c_str(), tuning.variant.c_str(),
                     rt.info.variant.c_str());
      }
    } else {
      for (const GemmTuneEntry& entry : tuning.entries) {
        int oi = 0;
        int wi = 0;
        FEDHISYN_CHECK_MSG(parse_class(entry.shape_class, oi, wi),
                           "gemm tune cache entry names unknown shape class '"
                               << entry.shape_class << "'");
        const GemmKernel* kernel = find_kernel(*variant, entry.kernel);
        FEDHISYN_CHECK_MSG(kernel != nullptr,
                           "gemm tune cache entry names unknown kernel '"
                               << entry.kernel << "' of variant '"
                               << rt.info.variant << "'");
        chosen[oi][wi] = forced != nullptr ? forced : kernel;
        nc[oi][wi] = entry.nc;
        rows[oi][wi] = entry.rows;
      }
      rt.info.cache_loaded = true;
    }
  }

  // 4. Legacy FEDHISYN_GEMM_TUNE: a global tile-grid override, applied last.
  const GemmTune legacy = gemm_tune_from_env();
  for (int oi = 0; oi < 3; ++oi) {
    for (int wi = 0; wi < 2; ++wi) {
      const GemmKernel* kernel = chosen[oi][wi];
      std::int64_t class_nc = legacy.nc > 0 ? legacy.nc : nc[oi][wi];
      std::int64_t class_rows = legacy.rows > 0 ? legacy.rows : rows[oi][wi];
      ResolvedGemm& cfg = rt.cfg[oi][wi];
      cfg.mr = kernel->mr;
      cfg.nr = kernel->nr;
      cfg.nc = round_up(class_nc, kernel->nr);
      cfg.rows = round_up(class_rows, kernel->mr);
      cfg.kloop = kernel->kloop;
    }
  }
  return rt;
}

Runtime& runtime_slot() {
  static Runtime runtime = [] {
    Runtime rt = build_runtime();
    log_selection_once(rt.info);
    return rt;
  }();
  return runtime;
}

// ---- autotuner helpers ------------------------------------------------------

struct TuneOperands {
  std::vector<float> a, b, c;
};

/// Same deterministic operand recipe as bench/gemm_sweep.cpp: timings vary,
/// the data never does.
TuneOperands make_operands(const GemmTuneShape& s) {
  TuneOperands ops;
  const std::int64_t a_size = s.m * s.k;  // kTN stores (k x m): same count
  const std::int64_t b_size = s.k * s.n;  // kNT stores (n x k): same count
  ops.a.resize(static_cast<std::size_t>(a_size));
  ops.b.resize(static_cast<std::size_t>(b_size));
  ops.c.resize(static_cast<std::size_t>(s.m * s.n));
  Rng rng(static_cast<std::uint64_t>(1000 + a_size + b_size));
  for (auto& x : ops.a) x = static_cast<float>(rng.normal());
  for (auto& x : ops.b) x = static_cast<float>(rng.normal());
  return ops;
}

/// Best-of timing (same shape as the bench harness): run until min_time_ms
/// of wall clock accumulates, at least 3 runs, return the fastest in ms.
template <typename Fn>
double time_best_ms(double min_time_ms, const Fn& fn) {
  fn();  // warm-up: pages, pack-buffer growth, branch predictors
  double best = 1e30;
  double total = 0.0;
  int runs = 0;
  while (total < min_time_ms || runs < 3) {
    const auto start = tune_clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(tune_clock::now() - start)
            .count();
    if (ms < best) best = ms;
    total += ms;
    ++runs;
  }
  return best;
}

}  // namespace

std::string gemm_shape_class(GemmOp op, std::int64_t n) {
  return class_name(op_index(op), width_index(n));
}

std::vector<std::string> gemm_shape_classes() {
  std::vector<std::string> classes;
  for (int oi = 0; oi < 3; ++oi) {
    for (int wi = 0; wi < 2; ++wi) classes.push_back(class_name(oi, wi));
  }
  return classes;
}

std::string gemm_tuning_to_json(const GemmTuning& tuning) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kTuneSchema << "\",\n";
  os << "  \"variant\": \"" << json::escape(tuning.variant) << "\",\n";
  os << "  \"entries\": [";
  bool first = true;
  for (const GemmTuneEntry& entry : tuning.entries) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"class\": \"" << json::escape(entry.shape_class)
       << "\", \"kernel\": \"" << json::escape(entry.kernel)
       << "\", \"nc\": " << entry.nc << ", \"rows\": " << entry.rows << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

GemmTuning gemm_tuning_from_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  FEDHISYN_CHECK_MSG(doc.kind == json::Value::Kind::kObject,
                     "gemm tune cache: document is not a JSON object");
  const json::Value* schema = doc.find("schema");
  FEDHISYN_CHECK_MSG(schema != nullptr && schema->as_string() == kTuneSchema,
                     "gemm tune cache: missing or unexpected schema (want '"
                         << kTuneSchema << "')");
  const json::Value* variant = doc.find("variant");
  FEDHISYN_CHECK_MSG(variant != nullptr, "gemm tune cache: missing 'variant'");
  const json::Value* entries = doc.find("entries");
  FEDHISYN_CHECK_MSG(entries != nullptr &&
                         entries->kind == json::Value::Kind::kArray,
                     "gemm tune cache: missing 'entries' array");
  GemmTuning tuning;
  tuning.variant = variant->as_string();
  for (const json::Value& item : entries->items) {
    const json::Value* cls = item.find("class");
    const json::Value* kernel = item.find("kernel");
    const json::Value* nc = item.find("nc");
    const json::Value* rows = item.find("rows");
    FEDHISYN_CHECK_MSG(
        cls != nullptr && kernel != nullptr && nc != nullptr && rows != nullptr,
        "gemm tune cache: entry missing class/kernel/nc/rows");
    GemmTuneEntry entry;
    entry.shape_class = cls->as_string();
    entry.kernel = kernel->as_string();
    entry.nc = nc->as_long();
    entry.rows = rows->as_long();
    int oi = 0;
    int wi = 0;
    FEDHISYN_CHECK_MSG(parse_class(entry.shape_class, oi, wi),
                       "gemm tune cache: unknown shape class '"
                           << entry.shape_class << "'");
    FEDHISYN_CHECK_MSG(entry.nc > 0 && entry.rows > 0,
                       "gemm tune cache: nc/rows must be positive in class '"
                           << entry.shape_class << "'");
    tuning.entries.push_back(std::move(entry));
  }
  return tuning;
}

void save_gemm_tuning(const GemmTuning& tuning, const std::string& path) {
  std::ofstream out(path);
  FEDHISYN_CHECK_MSG(out.good(), "cannot write gemm tuning cache '" << path << "'");
  out << gemm_tuning_to_json(tuning);
  out.flush();
  FEDHISYN_CHECK_MSG(out.good(), "failed writing gemm tuning cache '" << path << "'");
}

const GemmRuntimeInfo& gemm_runtime_info() { return runtime_slot().info; }

const ResolvedGemm& gemm_runtime_config(GemmOp op, std::int64_t n) {
  return runtime_slot().cfg[op_index(op)][width_index(n)];
}

void gemm_runtime_reinit() {
  Runtime fresh = build_runtime();  // may throw: slot stays untouched
  log_selection_once(fresh.info);
  runtime_slot() = std::move(fresh);
}

std::vector<std::string> gemm_supported_variants() {
  std::vector<std::string> names;
  for (const GemmVariant* variant : all_variants()) {
    if (variant_usable(*variant)) names.emplace_back(variant->name);
  }
  return names;
}

std::vector<GemmKernelId> gemm_kernel_catalog() {
  std::vector<GemmKernelId> catalog;
  for (const GemmVariant* variant : all_variants()) {
    if (!variant_usable(*variant)) continue;
    for (const GemmKernel& kernel : variant->kernels) {
      catalog.push_back({variant->name, kernel.label});
    }
  }
  return catalog;
}

GemmTuning autotune_gemm(std::span<const GemmTuneShape> shapes,
                         const std::string& variant_name, double min_time_ms) {
  const GemmVariant* variant = find_variant(variant_name);
  FEDHISYN_CHECK_MSG(variant != nullptr && variant_usable(*variant),
                     "autotune_gemm: variant '" << variant_name
                                                << "' is not supported here");

  std::vector<GemmTuneShape> buckets[3][2];
  for (const GemmTuneShape& s : shapes) {
    buckets[op_index(s.op)][width_index(s.n)].push_back(s);
  }

  // The tile-grid candidate grid: panel widths around cache-sized panels,
  // task heights of 1/2/4 register tiles.  Coarse on purpose — the knobs are
  // scheduling only, and a 3x3 grid per kernel keeps a full sweep under a
  // minute at bench-grade min_time_ms.
  constexpr std::int64_t kNcCandidates[] = {256, 512, 1024};
  constexpr std::int64_t kRowFactors[] = {1, 2, 4};

  // Time single-threaded on a locally-bound pool: st ratios transfer across
  // machines and the sweep never perturbs (or reads) the process-wide pool.
  ParallelExecutor pool(1);
  ParallelExecutor::Bind bind(pool);

  GemmTuning tuning;
  tuning.variant = variant->name;
  for (int oi = 0; oi < 3; ++oi) {
    for (int wi = 0; wi < 2; ++wi) {
      const auto& bucket = buckets[oi][wi];
      if (bucket.empty()) continue;
      std::vector<TuneOperands> operands;
      operands.reserve(bucket.size());
      for (const GemmTuneShape& s : bucket) operands.push_back(make_operands(s));

      const GemmKernel* best_kernel = nullptr;
      std::int64_t best_nc = 0;
      std::int64_t best_rows = 0;
      double best_ms = 1e300;
      for (const GemmKernel& kernel : variant->kernels) {
        for (const std::int64_t nc : kNcCandidates) {
          for (const std::int64_t factor : kRowFactors) {
            ResolvedGemm cfg;
            cfg.mr = kernel.mr;
            cfg.nr = kernel.nr;
            cfg.nc = round_up(nc, kernel.nr);
            cfg.rows = factor * kernel.mr;
            cfg.kloop = kernel.kloop;
            double total = 0.0;
            for (std::size_t si = 0; si < bucket.size(); ++si) {
              const GemmTuneShape& s = bucket[si];
              TuneOperands& ops = operands[si];
              total += time_best_ms(min_time_ms, [&] {
                gemmk::detail::gemm_run(s.op, ops.a.data(), ops.b.data(),
                                        ops.c.data(), s.m, s.k, s.n, 0.0f, cfg);
              });
            }
            // Strict < : ties keep the earlier candidate, so equal timings
            // reproduce the same cache file.
            if (total < best_ms) {
              best_ms = total;
              best_kernel = &kernel;
              best_nc = cfg.nc;
              best_rows = cfg.rows;
            }
          }
        }
      }
      tuning.entries.push_back(
          {class_name(oi, wi), best_kernel->label, best_nc, best_rows});
    }
  }
  return tuning;
}

std::string gemm_info_string() {
  const Runtime& rt = runtime_slot();
  std::ostringstream os;
  os << "gemm dispatch:\n";
  os << "  variant:        " << rt.info.variant << "\n";
  os << "  forced kernel:  "
     << (rt.info.forced_kernel.empty() ? "(none)" : rt.info.forced_kernel)
     << "\n";
  os << "  tune cache:     ";
  if (rt.info.cache_path.empty()) {
    os << "(none)";
  } else {
    os << rt.info.cache_path
       << (rt.info.cache_loaded ? " (loaded)" : " (ignored: variant mismatch)");
  }
  os << "\n  supported variants:";
  for (const std::string& name : gemm_supported_variants()) os << " " << name;
  os << "\n  kernels:\n";
  for (const GemmVariant* variant : all_variants()) {
    if (!variant_usable(*variant)) continue;
    os << "    " << variant->name << ":";
    for (const GemmKernel& kernel : variant->kernels) os << " " << kernel.label;
    os << "\n";
  }
  os << "  resolved configs (class: kernel nc rows):\n";
  for (int oi = 0; oi < 3; ++oi) {
    for (int wi = 0; wi < 2; ++wi) {
      const ResolvedGemm& cfg = rt.cfg[oi][wi];
      os << "    " << class_name(oi, wi) << ": " << cfg.mr << "x" << cfg.nr
         << " nc=" << cfg.nc << " rows=" << cfg.rows << "\n";
    }
  }
  return os.str();
}

}  // namespace fedhisyn
