// Communication accounting — the paper's primary efficiency metric.
//
// Table 1 reports "number of models transmitted between devices and the
// server, relative to the cost of one FedAvg round".  One FedAvg round with
// |S| participants moves |S| models down + |S| models up = 2|S| model-units.
// SCAFFOLD moves a model AND a control variate each way (x2); FedAT and
// TAFedAvg upload more often than once per round.  Counting actual transfers
// and dividing by the per-round baseline reproduces all of the paper's
// normalisation rules at once.
#pragma once

#include <cstdint>

namespace fedhisyn::sim {

class CommTracker {
 public:
  /// `model_units` lets SCAFFOLD count 2 per exchange (model + variate).
  void record_server_download(double model_units = 1.0) { server_down_ += model_units; }
  void record_server_upload(double model_units = 1.0) { server_up_ += model_units; }
  void record_device_to_device(double model_units = 1.0) { device_device_ += model_units; }

  double server_model_units() const { return server_down_ + server_up_; }
  double server_downloads() const { return server_down_; }
  double server_uploads() const { return server_up_; }
  double device_to_device_units() const { return device_device_; }

  /// Server traffic normalised to FedAvg rounds: one round of FedAvg with
  /// `participants` devices costs 2*participants model-units.
  double normalized_rounds(std::size_t participants) const;

  void reset();

 private:
  double server_down_ = 0.0;
  double server_up_ = 0.0;
  double device_device_ = 0.0;
};

}  // namespace fedhisyn::sim
