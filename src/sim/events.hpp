// Virtual-time discrete-event engine.
//
// The FL algorithms schedule "local training finished on device d" events and
// the engine pops them in (time, sequence) order, so concurrent device
// activity interleaves exactly as it would on real hardware while staying
// fully deterministic (ties broken by insertion sequence).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fedhisyn::sim {

/// One scheduled occurrence.  `device` is free-form payload for the caller.
struct Event {
  double time = 0.0;
  std::uint64_t sequence = 0;  // tie-breaker: FIFO among equal times
  std::size_t device = 0;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return sequence > other.sequence;
  }
};

/// Min-heap of events with a monotonically advancing clock.
class EventQueue {
 public:
  /// Schedule an event at absolute virtual time `time` (>= now()).
  void schedule(double time, std::size_t device);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Earliest pending event time (queue must be non-empty).
  double peek_time() const;

  /// Pop the earliest event and advance the clock to it.
  Event pop();

  double now() const { return now_; }
  /// Reset clock and drop all events (start of a new round).
  void reset(double time = 0.0);

 private:
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace fedhisyn::sim
