#include "sim/comm.hpp"

#include "common/check.hpp"

namespace fedhisyn::sim {

double CommTracker::normalized_rounds(std::size_t participants) const {
  FEDHISYN_CHECK(participants >= 1);
  return server_model_units() / (2.0 * static_cast<double>(participants));
}

void CommTracker::reset() {
  server_down_ = 0.0;
  server_up_ = 0.0;
  device_device_ = 0.0;
}

}  // namespace fedhisyn::sim
