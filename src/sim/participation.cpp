#include "sim/participation.hpp"

#include "common/check.hpp"

namespace fedhisyn::sim {

std::vector<std::size_t> sample_participants(std::size_t devices, double probability,
                                             Rng& rng, std::size_t min_participants) {
  FEDHISYN_CHECK(devices >= 1);
  FEDHISYN_CHECK(probability > 0.0 && probability <= 1.0);
  min_participants = std::min(min_participants, devices);
  for (;;) {
    std::vector<std::size_t> selected;
    for (std::size_t d = 0; d < devices; ++d) {
      if (rng.bernoulli(probability)) selected.push_back(d);
    }
    if (selected.size() >= min_participants) return selected;
  }
}

}  // namespace fedhisyn::sim
