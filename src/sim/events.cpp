#include "sim/events.hpp"

#include "common/check.hpp"

namespace fedhisyn::sim {

void EventQueue::schedule(double time, std::size_t device) {
  FEDHISYN_CHECK_MSG(time >= now_, "cannot schedule in the past (t=" << time << ", now="
                                                                     << now_ << ")");
  heap_.push(Event{time, next_sequence_++, device});
}

double EventQueue::peek_time() const {
  FEDHISYN_CHECK(!heap_.empty());
  return heap_.top().time;
}

Event EventQueue::pop() {
  FEDHISYN_CHECK(!heap_.empty());
  Event event = heap_.top();
  heap_.pop();
  now_ = event.time;
  return event;
}

void EventQueue::reset(double time) {
  heap_ = {};
  now_ = time;
  next_sequence_ = 0;
}

}  // namespace fedhisyn::sim
