#include "sim/ring.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace fedhisyn::sim {

const char* ring_order_name(RingOrder order) {
  switch (order) {
    case RingOrder::kRandom: return "random";
    case RingOrder::kSmallToLarge: return "small-to-large";
    case RingOrder::kLargeToSmall: return "large-to-small";
  }
  return "?";
}

RingTopology RingTopology::build(const std::vector<std::size_t>& members,
                                 const std::vector<double>& times, RingOrder order,
                                 Rng& rng) {
  FEDHISYN_CHECK(!members.empty());
  RingTopology ring;
  ring.ordered_ = members;
  switch (order) {
    case RingOrder::kRandom:
      rng.shuffle(ring.ordered_);
      break;
    case RingOrder::kSmallToLarge:
      std::stable_sort(ring.ordered_.begin(), ring.ordered_.end(),
                       [&](std::size_t a, std::size_t b) {
                         FEDHISYN_CHECK(a < times.size() && b < times.size());
                         return times[a] < times[b];
                       });
      break;
    case RingOrder::kLargeToSmall:
      std::stable_sort(ring.ordered_.begin(), ring.ordered_.end(),
                       [&](std::size_t a, std::size_t b) {
                         FEDHISYN_CHECK(a < times.size() && b < times.size());
                         return times[a] > times[b];
                       });
      break;
  }
  const std::size_t max_id = *std::max_element(ring.ordered_.begin(), ring.ordered_.end());
  ring.successor_of_.assign(max_id + 1, kInvalid);
  for (std::size_t pos = 0; pos < ring.ordered_.size(); ++pos) {
    const std::size_t next_pos = (pos + 1) % ring.ordered_.size();
    ring.successor_of_[ring.ordered_[pos]] = ring.ordered_[next_pos];
  }
  return ring;
}

bool RingTopology::contains(std::size_t device) const {
  return device < successor_of_.size() && successor_of_[device] != kInvalid;
}

std::size_t RingTopology::successor(std::size_t device) const {
  FEDHISYN_CHECK_MSG(contains(device), "device " << device << " is not in this ring");
  return successor_of_[device];
}

}  // namespace fedhisyn::sim
