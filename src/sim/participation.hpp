// Per-round participant selection.  The paper: "each device has a 100%, 50%,
// or 10% chance of participating in the training" — i.e. independent
// Bernoulli draws each round, with a re-draw if nobody shows up.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace fedhisyn::sim {

/// Device ids participating this round.  probability in (0, 1]; never empty
/// (re-drawn until at least `min_participants` devices are selected).
std::vector<std::size_t> sample_participants(std::size_t devices, double probability,
                                             Rng& rng, std::size_t min_participants = 2);

}  // namespace fedhisyn::sim
