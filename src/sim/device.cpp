#include "sim/device.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace fedhisyn::sim {

Fleet make_fleet_uniform_epochs(std::size_t devices, Rng& rng, int min_epochs,
                                int max_epochs) {
  FEDHISYN_CHECK(devices >= 1);
  FEDHISYN_CHECK(min_epochs >= 1 && max_epochs >= min_epochs);
  Fleet fleet(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    const int achievable =
        min_epochs + static_cast<int>(rng.uniform_index(
                         static_cast<std::uint64_t>(max_epochs - min_epochs + 1)));
    fleet[i].id = i;
    fleet[i].epoch_time = static_cast<double>(max_epochs) / achievable;
  }
  return fleet;
}

Fleet make_fleet_ratio(std::size_t devices, double h_ratio, Rng& rng) {
  FEDHISYN_CHECK(devices >= 1);
  FEDHISYN_CHECK(h_ratio >= 1.0);
  Fleet fleet(devices);
  const double log_h = std::log(h_ratio);
  for (std::size_t i = 0; i < devices; ++i) {
    fleet[i].id = i;
    fleet[i].epoch_time = std::exp(rng.uniform() * log_h);
  }
  // Pin the extremes so H is exact, not just the sampling range.
  if (devices >= 2) {
    auto [min_it, max_it] =
        std::minmax_element(fleet.begin(), fleet.end(), [](const auto& a, const auto& b) {
          return a.epoch_time < b.epoch_time;
        });
    min_it->epoch_time = 1.0;
    max_it->epoch_time = h_ratio;
  }
  return fleet;
}

Fleet make_fleet_homogeneous(std::size_t devices, double epoch_time) {
  FEDHISYN_CHECK(devices >= 1);
  FEDHISYN_CHECK(epoch_time > 0.0);
  Fleet fleet(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    fleet[i].id = i;
    fleet[i].epoch_time = epoch_time;
  }
  return fleet;
}

double local_training_time(const DeviceProfile& device, int epochs) {
  FEDHISYN_CHECK(epochs >= 1);
  return device.epoch_time * epochs;
}

double ring_metric(const DeviceProfile& device, int epochs) {
  return local_training_time(device, epochs) + device.link_delay;
}

double slowest_job_time(const Fleet& fleet, int epochs) {
  FEDHISYN_CHECK(!fleet.empty());
  double worst = 0.0;
  for (const auto& device : fleet) {
    worst = std::max(worst, local_training_time(device, epochs));
  }
  return worst;
}

}  // namespace fedhisyn::sim
