// Ring topologies over a set of device indices (paper §4.1).
//
// The server orders devices by the metric M_i = t_i + D_{i,i+1}; with the
// paper's simplification of equal inter-device delay this reduces to M_i =
// t_i.  Small-to-large is FedHiSyn's choice; Random and LargeToSmall exist
// for the Fig. 3 comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace fedhisyn::sim {

enum class RingOrder { kRandom, kSmallToLarge, kLargeToSmall };

const char* ring_order_name(RingOrder order);

/// A directed ring: successor(i) is the device that receives models from i.
class RingTopology {
 public:
  RingTopology() = default;

  /// Build a ring over `members` (device ids), ordered by `times[id]` with
  /// the given policy.  `times` is indexed by device id (fleet-wide).
  static RingTopology build(const std::vector<std::size_t>& members,
                            const std::vector<double>& times, RingOrder order, Rng& rng);

  std::size_t size() const { return ordered_.size(); }
  bool contains(std::size_t device) const;
  /// Next device in the ring after `device` (the one it sends to).
  std::size_t successor(std::size_t device) const;
  /// Members in ring order (position 0 = smallest metric for kSmallToLarge).
  const std::vector<std::size_t>& ordered_members() const { return ordered_; }

 private:
  std::vector<std::size_t> ordered_;
  // successor_of_[id] = next id; kInvalid for non-members.
  std::vector<std::size_t> successor_of_;
  static constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);
};

}  // namespace fedhisyn::sim
