// Device fleet model: each simulated device carries a compute profile whose
// only observable is the (virtual) time it needs per local-training epoch —
// exactly the response-latency signal the FedHiSyn server clusters on.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace fedhisyn::sim {

/// One simulated edge device.
struct DeviceProfile {
  std::size_t id = 0;
  /// Virtual time to run ONE local epoch on this device.  The paper's
  /// "time to complete local training t_i" is epochs_per_job * epoch_time.
  double epoch_time = 1.0;
  /// Outgoing link delay: time for a model sent by this device to reach its
  /// ring successor.  The paper's Eq. (5) metric is M_i = t_i + D_{i,i+1};
  /// it then simplifies to equal delays (M_i = t_i), which is the default 0
  /// here.  Non-zero delays exercise the general form.
  double link_delay = 0.0;
};

using Fleet = std::vector<DeviceProfile>;

/// Paper §6.1 fleet: "the number of epochs for each device to complete local
/// training in one round is randomly distributed in [5, 50]".  With a 5-epoch
/// job this means epoch times spread 1x..10x; we sample achievable-epochs e_i
/// uniformly in [min_epochs, max_epochs] and set epoch_time = max_epochs/e_i
/// so the fastest device has epoch_time 1.
Fleet make_fleet_uniform_epochs(std::size_t devices, Rng& rng, int min_epochs = 5,
                                int max_epochs = 50);

/// Fig. 7 fleet: heterogeneity ratio H = t_max/t_min; epoch times sampled
/// log-uniformly in [1, H] so every decade of speed is equally represented.
Fleet make_fleet_ratio(std::size_t devices, double h_ratio, Rng& rng);

/// Homogeneous fleet (Observation 1 experiments).
Fleet make_fleet_homogeneous(std::size_t devices, double epoch_time = 1.0);

/// t_i for a local-training job of `epochs` epochs on device i.
double local_training_time(const DeviceProfile& device, int epochs);

/// The paper's Eq. (5) ring-ordering metric: M_i = t_i + D_{i,i+1}.
double ring_metric(const DeviceProfile& device, int epochs);

/// max_i local_training_time — the paper's round duration (slowest device).
double slowest_job_time(const Fleet& fleet, int epochs);

}  // namespace fedhisyn::sim
